// The github-archive queries G1-G4 (paper Table 1).
//
//   G1  repositories whose operations are all pushes
//   G2  the operation directly preceding each repository deletion
//   G3  number of operations between pull-request open and close
//   G4  time between branch deletion and branch re-creation
//
// All four group by repository id. Events are time-ordered within a group by
// construction of the runtime (Section 5.4).
#ifndef SYMPLE_QUERIES_GITHUB_QUERIES_H_
#define SYMPLE_QUERIES_GITHUB_QUERIES_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "common/datetime.h"
#include "common/text.h"
#include "core/symple.h"
#include "queries/text_row.h"
#include "workloads/github_gen.h"

namespace symple {

// Shared parser: extracts (repo_id, {ts, op}) — only the fields the UDAs use,
// which is also what the hand-optimized baseline ships over the network.
struct GithubEvent {
  int64_t ts = 0;
  uint8_t op = 0;  // GithubOp underlying value
};

// Targeted extraction from the JSON archive lines: locate the three used
// fields by key (the style of the paper's hand-optimized C++ pipeline — no
// JSON DOM, but every byte up to the last used field is scanned, and the
// datetime really gets parsed).
inline std::optional<std::string_view> JsonFieldAfter(std::string_view line,
                                                      std::string_view key,
                                                      char terminator) {
  const size_t at = line.find(key);
  if (at == std::string_view::npos) {
    return std::nullopt;
  }
  const size_t begin = at + key.size();
  const size_t end = line.find(terminator, begin);
  if (end == std::string_view::npos) {
    return std::nullopt;
  }
  return line.substr(begin, end - begin);
}

inline std::optional<std::pair<int64_t, GithubEvent>> ParseGithubLine(
    std::string_view line) {
  const auto created = JsonFieldAfter(line, "\"created_at\":\"", '"');
  const auto repo = JsonFieldAfter(line, "\"repo\":{\"id\":", ',');
  const auto op_name = JsonFieldAfter(line, "\"type\":\"", '"');
  if (!created || !repo || !op_name) {
    return std::nullopt;
  }
  const auto ts_v = ParseDateTime(*created);
  const auto repo_id = ParseInt64(*repo);
  const auto op = GithubOpFromName(*op_name);
  if (!ts_v || !repo_id || !op) {
    return std::nullopt;
  }
  return std::make_pair(*repo_id,
                        GithubEvent{*ts_v, static_cast<uint8_t>(*op)});
}

inline void SerializeGithubEvent(const GithubEvent& e, BinaryWriter& w) {
  WriteTextRow(w, {e.ts, e.op});
}
inline GithubEvent DeserializeGithubEvent(BinaryReader& r) {
  const auto row = ReadTextRow<2>(r);
  return GithubEvent{row[0], static_cast<uint8_t>(row[1])};
}

constexpr uint8_t kOpPush = static_cast<uint8_t>(GithubOp::kPush);
constexpr uint8_t kOpPullOpen = static_cast<uint8_t>(GithubOp::kPullOpen);
constexpr uint8_t kOpPullClose = static_cast<uint8_t>(GithubOp::kPullClose);
constexpr uint8_t kOpCreateBranch = static_cast<uint8_t>(GithubOp::kCreateBranch);
constexpr uint8_t kOpDeleteBranch = static_cast<uint8_t>(GithubOp::kDeleteBranch);
constexpr uint8_t kOpDeleteRepo = static_cast<uint8_t>(GithubOp::kDeleteRepo);

// --- G1: repositories with only push commands ---------------------------------

struct G1OnlyPushes {
  using Key = int64_t;
  using Event = GithubEvent;
  struct State {
    SymBool only_push = true;
    auto list_fields() { return std::tie(only_push); }
  };
  using Output = bool;

  static constexpr const char* kName = "G1";

  static std::optional<std::pair<Key, Event>> Parse(std::string_view line) {
    return ParseGithubLine(line);
  }

  static void Update(State& s, const Event& e) {
    if (e.op != kOpPush) {
      s.only_push = false;
    }
  }

  static Output Result(const State& s, const Key&) { return s.only_push.BoolValue(); }

  static void SerializeEvent(const Event& e, BinaryWriter& w) {
    SerializeGithubEvent(e, w);
  }
  static Event DeserializeEvent(BinaryReader& r) { return DeserializeGithubEvent(r); }
};

// --- G2: operations directly preceding a repository deletion -------------------

struct G2OpsBeforeDelete {
  using Key = int64_t;
  using Event = GithubEvent;
  struct State {
    SymEnum<uint8_t, kGithubOpCount> prev_op = static_cast<uint8_t>(0);
    SymBool has_prev = false;
    SymVector<int64_t> preceding;  // op kinds, possibly symbolic across chunks
    auto list_fields() { return std::tie(prev_op, has_prev, preceding); }
  };
  using Output = std::vector<int64_t>;

  static constexpr const char* kName = "G2";

  static std::optional<std::pair<Key, Event>> Parse(std::string_view line) {
    return ParseGithubLine(line);
  }

  static void Update(State& s, const Event& e) {
    if (e.op == kOpDeleteRepo) {
      if (s.has_prev) {
        s.preceding.push_back(s.prev_op);
      }
    }
    s.prev_op = e.op;
    s.has_prev = true;
  }

  static Output Result(const State& s, const Key&) { return s.preceding.Values(); }

  static void SerializeEvent(const Event& e, BinaryWriter& w) {
    SerializeGithubEvent(e, w);
  }
  static Event DeserializeEvent(BinaryReader& r) { return DeserializeGithubEvent(r); }
};

// --- G3: number of operations between pull open and close ----------------------

struct G3PullWindowOps {
  using Key = int64_t;
  using Event = GithubEvent;
  struct State {
    SymBool in_pull = false;
    SymInt count = 0;
    SymVector<int64_t> counts;
    auto list_fields() { return std::tie(in_pull, count, counts); }
  };
  using Output = std::vector<int64_t>;

  static constexpr const char* kName = "G3";

  static std::optional<std::pair<Key, Event>> Parse(std::string_view line) {
    return ParseGithubLine(line);
  }

  static void Update(State& s, const Event& e) {
    if (e.op == kOpPullOpen) {
      s.in_pull = true;
      s.count = 0;
    } else if (e.op == kOpPullClose) {
      if (s.in_pull) {
        s.counts.push_back(s.count);
      }
      s.in_pull = false;
    } else if (s.in_pull) {
      s.count++;
    }
  }

  static Output Result(const State& s, const Key&) { return s.counts.Values(); }

  static void SerializeEvent(const Event& e, BinaryWriter& w) {
    SerializeGithubEvent(e, w);
  }
  static Event DeserializeEvent(BinaryReader& r) { return DeserializeGithubEvent(r); }
};

// --- G4: time between branch deletion and branch creation ----------------------

struct G4BranchGap {
  using Key = int64_t;
  using Event = GithubEvent;
  struct State {
    SymBool pending_delete = false;
    SymInt delete_ts = 0;
    SymVector<int64_t> gaps;
    auto list_fields() { return std::tie(pending_delete, delete_ts, gaps); }
  };
  using Output = std::vector<int64_t>;

  static constexpr const char* kName = "G4";

  static std::optional<std::pair<Key, Event>> Parse(std::string_view line) {
    return ParseGithubLine(line);
  }

  static void Update(State& s, const Event& e) {
    if (e.op == kOpDeleteBranch) {
      s.pending_delete = true;
      s.delete_ts = e.ts;
    } else if (e.op == kOpCreateBranch) {
      if (s.pending_delete) {
        // e.ts - delete_ts stays symbolic when the deletion happened in an
        // earlier chunk; the vector concretizes it at composition.
        s.gaps.push_back(e.ts - s.delete_ts);
        s.pending_delete = false;
      }
    }
  }

  static Output Result(const State& s, const Key&) { return s.gaps.Values(); }

  static void SerializeEvent(const Event& e, BinaryWriter& w) {
    SerializeGithubEvent(e, w);
  }
  static Event DeserializeEvent(BinaryReader& r) { return DeserializeGithubEvent(r); }
};

}  // namespace symple

#endif  // SYMPLE_QUERIES_GITHUB_QUERIES_H_
