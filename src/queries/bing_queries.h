// The Bing query-log queries B1-B3 (paper Table 1).
//
//   B1  global outages: more than 2 minutes with no successful query by any
//       user (a single group — symbolic parallelism is the *only* source of
//       parallelism here, the paper's most extreme case)
//   B2  the same outage detection per geographic area
//   B3  number of queries per session per user (< 2 minutes between queries;
//       many groups — the paper's case where SYMPLE cannot help)
#ifndef SYMPLE_QUERIES_BING_QUERIES_H_
#define SYMPLE_QUERIES_BING_QUERIES_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "common/text.h"
#include "core/symple.h"
#include "queries/text_row.h"

namespace symple {

inline constexpr int64_t kOutageGapSeconds = 120;

struct BingEvent {
  int64_t ts = 0;
  bool success = false;
};

// key_field: 0 -> constant key (B1), 1 -> user (B3), 2 -> area (B2).
template <int KeyField>
std::optional<std::pair<int64_t, BingEvent>> ParseBingLine(std::string_view line) {
  FieldCursor cur(line);
  const auto ts = cur.Next();
  const auto user = cur.Next();
  const auto area = cur.Next();
  const auto status = cur.Next();
  if (!ts || !user || !area || !status) {
    return std::nullopt;
  }
  const auto ts_v = ParseInt64(*ts);
  if (!ts_v) {
    return std::nullopt;
  }
  int64_t key = 0;
  if constexpr (KeyField == 1) {
    const auto user_id = ParseInt64(*user);
    if (!user_id) {
      return std::nullopt;
    }
    key = *user_id;
  } else if constexpr (KeyField == 2) {
    // Area field looks like "A17".
    const auto area_id = ParseInt64(area->substr(1));
    if (!area_id) {
      return std::nullopt;
    }
    key = *area_id;
  }
  return std::make_pair(key, BingEvent{*ts_v, *status == "ok"});
}

inline void SerializeBingEvent(const BingEvent& e, BinaryWriter& w) {
  WriteTextRow(w, {e.ts, e.success ? 1 : 0});
}
inline BingEvent DeserializeBingEvent(BinaryReader& r) {
  const auto row = ReadTextRow<2>(r);
  return BingEvent{row[0], row[1] != 0};
}

// Shared outage-detection state: remembers the last successful-query
// timestamp; when a success arrives more than the gap after the previous one,
// the recovery timestamp is reported.
struct OutageState {
  SymBool seen = false;
  SymInt last_ok = 0;
  SymVector<int64_t> recoveries;
  auto list_fields() { return std::tie(seen, last_ok, recoveries); }
};

inline void OutageUpdate(OutageState& s, const BingEvent& e) {
  if (!e.success) {
    return;
  }
  if (s.seen && s.last_ok < e.ts - kOutageGapSeconds) {
    s.recoveries.push_back(e.ts);
  }
  s.seen = true;
  s.last_ok = e.ts;
}

// --- B1: global outages ---------------------------------------------------------

struct B1GlobalOutages {
  using Key = int64_t;  // constant 0: one group
  using Event = BingEvent;
  using State = OutageState;
  using Output = std::vector<int64_t>;

  static constexpr const char* kName = "B1";

  static std::optional<std::pair<Key, Event>> Parse(std::string_view line) {
    return ParseBingLine<0>(line);
  }
  static void Update(State& s, const Event& e) { OutageUpdate(s, e); }
  static Output Result(const State& s, const Key&) { return s.recoveries.Values(); }
  static void SerializeEvent(const Event& e, BinaryWriter& w) {
    SerializeBingEvent(e, w);
  }
  static Event DeserializeEvent(BinaryReader& r) { return DeserializeBingEvent(r); }
};

// --- B2: outages per geographic area ---------------------------------------------

struct B2AreaOutages {
  using Key = int64_t;  // area id (~tens of groups)
  using Event = BingEvent;
  using State = OutageState;
  using Output = std::vector<int64_t>;

  static constexpr const char* kName = "B2";

  static std::optional<std::pair<Key, Event>> Parse(std::string_view line) {
    return ParseBingLine<2>(line);
  }
  static void Update(State& s, const Event& e) { OutageUpdate(s, e); }
  static Output Result(const State& s, const Key&) { return s.recoveries.Values(); }
  static void SerializeEvent(const Event& e, BinaryWriter& w) {
    SerializeBingEvent(e, w);
  }
  static Event DeserializeEvent(BinaryReader& r) { return DeserializeBingEvent(r); }
};

// --- B3: queries per session per user --------------------------------------------

struct B3UserSessions {
  using Key = int64_t;  // user id (many groups)
  using Event = BingEvent;
  struct State {
    SymBool seen = false;
    SymInt last_ts = 0;
    SymInt count = 0;
    SymVector<int64_t> sessions;
    auto list_fields() { return std::tie(seen, last_ts, count, sessions); }
  };
  // Closed sessions plus the count of the still-open trailing session.
  using Output = std::pair<std::vector<int64_t>, int64_t>;

  static constexpr const char* kName = "B3";

  static std::optional<std::pair<Key, Event>> Parse(std::string_view line) {
    return ParseBingLine<1>(line);
  }

  static void Update(State& s, const Event& e) {
    if (s.seen && s.last_ts < e.ts - kOutageGapSeconds) {
      s.sessions.push_back(s.count);  // session boundary: close previous
      s.count = 0;
    }
    s.count++;
    s.seen = true;
    s.last_ts = e.ts;
  }

  static Output Result(const State& s, const Key&) {
    return {s.sessions.Values(), s.count.Value()};
  }

  static void SerializeEvent(const Event& e, BinaryWriter& w) {
    SerializeBingEvent(e, w);
  }
  static Event DeserializeEvent(BinaryReader& r) { return DeserializeBingEvent(r); }
};

}  // namespace symple

#endif  // SYMPLE_QUERIES_BING_QUERIES_H_
