// Textual shuffle rows for the baseline MapReduce engine.
//
// The paper's EMR pipeline streams data between C++ map/reduce tasks through
// Hadoop streaming (Section 6.3): what crosses the shuffle is tab-separated
// *text*. The baseline's per-record shuffle cost therefore reflects decimal
// text, and the reducer really re-parses it — both effects the evaluation
// depends on. (SYMPLE summaries use the compact binary canonical forms.)
#ifndef SYMPLE_QUERIES_TEXT_ROW_H_
#define SYMPLE_QUERIES_TEXT_ROW_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/error.h"
#include "common/text.h"
#include "serialize/binary_io.h"

namespace symple {

// Writes the fields as one tab-separated decimal text row.
inline void WriteTextRow(BinaryWriter& w, std::initializer_list<int64_t> fields) {
  std::string row;
  bool first = true;
  for (int64_t f : fields) {
    if (!first) {
      row += '\t';
    }
    row += std::to_string(f);
    first = false;
  }
  w.WriteString(row);
}

// Reads a row of exactly N decimal fields.
template <size_t N>
std::array<int64_t, N> ReadTextRow(BinaryReader& r) {
  const std::string row = r.ReadString();
  FieldCursor cur(row);
  std::array<int64_t, N> out{};
  for (size_t i = 0; i < N; ++i) {
    const auto field = cur.Next();
    SYMPLE_CHECK(field.has_value(), "truncated shuffle text row");
    const auto value = ParseInt64(*field);
    SYMPLE_CHECK(value.has_value(), "malformed shuffle text row");
    out[i] = *value;
  }
  return out;
}

}  // namespace symple

#endif  // SYMPLE_QUERIES_TEXT_ROW_H_
