// GPS session counting — the paper's Section 4.4 SymPred example.
//
// Splits each user's GPS event sequence into sessions (contiguous runs where
// every event is within a bounded distance of the previous one) and reports
// the event count of every closed session. The distance check is nonlinear,
// so it runs as a black-box SymPred: the first event of every chunk blindly
// explores both outcomes, and the recorded (argument, outcome) trace is
// checked against the resolved previous coordinate at composition time.
#ifndef SYMPLE_QUERIES_GPS_QUERY_H_
#define SYMPLE_QUERIES_GPS_QUERY_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "common/text.h"
#include "core/symple.h"
#include "queries/text_row.h"

namespace symple {

struct GpsCoord {
  int64_t lat_microdeg = 0;
  int64_t lon_microdeg = 0;

  friend bool operator==(const GpsCoord&, const GpsCoord&) = default;
};

template <>
struct ValueCodec<GpsCoord> {
  static void Write(BinaryWriter& w, const GpsCoord& v) {
    w.WriteVarInt(v.lat_microdeg);
    w.WriteVarInt(v.lon_microdeg);
  }
  static GpsCoord Read(BinaryReader& r) {
    GpsCoord v;
    v.lat_microdeg = r.ReadVarInt();
    v.lon_microdeg = r.ReadVarInt();
    return v;
  }
};

// Squared planar distance below the session bound — deliberately nonlinear,
// beyond what interval decision procedures can reason about.
inline constexpr int64_t kGpsSessionBoundMicrodeg = 50000;

inline bool GpsDistanceLessThanBound(const GpsCoord& sym, const GpsCoord& val) {
  const double dlat = static_cast<double>(sym.lat_microdeg - val.lat_microdeg);
  const double dlon = static_cast<double>(sym.lon_microdeg - val.lon_microdeg);
  const double bound = static_cast<double>(kGpsSessionBoundMicrodeg);
  return dlat * dlat + dlon * dlon < bound * bound;
}

inline const PredId kGpsSessionPred =
    RegisterTypedPred<GpsCoord, &GpsDistanceLessThanBound>("gps.distance_lt_bound");

struct GpsSessionQuery {
  using Key = int64_t;  // user id
  struct Event {
    GpsCoord coord;
  };
  struct State {
    SymInt count = 0;
    SymVector<int64_t> counts;
    SymPred<GpsCoord> prev{kGpsSessionPred};
    SymBool seen = false;
    auto list_fields() { return std::tie(count, counts, prev, seen); }
  };
  using Output = std::vector<int64_t>;

  static constexpr const char* kName = "GpsSessions";

  static std::optional<std::pair<Key, Event>> Parse(std::string_view line) {
    FieldCursor cur(line);
    cur.Skip(1);  // timestamp unused
    const auto user = cur.Next();
    const auto lat = cur.Next();
    const auto lon = cur.Next();
    if (!user || !lat || !lon) {
      return std::nullopt;
    }
    const auto user_id = ParseInt64(*user);
    const auto lat_v = ParseInt64(*lat);
    const auto lon_v = ParseInt64(*lon);
    if (!user_id || !lat_v || !lon_v) {
      return std::nullopt;
    }
    return std::make_pair(*user_id, Event{GpsCoord{*lat_v, *lon_v}});
  }

  static void Update(State& s, const Event& e) {
    // The paper's CountEventsInSessions, with a `seen` guard so that the very
    // first event of the whole stream starts (rather than closes) a session.
    if (s.seen && s.prev.EvalPred(e.coord)) {
      // same session
      s.count++;
    } else {
      if (s.seen) {
        s.counts.push_back(s.count);  // close the previous session
      }
      s.count = 1;
      s.seen = true;
    }
    s.prev.SetValue(e.coord);
  }

  static Output Result(const State& s, const Key&) { return s.counts.Values(); }

  static void SerializeEvent(const Event& e, BinaryWriter& w) {
    WriteTextRow(w, {e.coord.lat_microdeg, e.coord.lon_microdeg});
  }
  static Event DeserializeEvent(BinaryReader& r) {
    const auto row = ReadTextRow<2>(r);
    return Event{GpsCoord{row[0], row[1]}};
  }
};

}  // namespace symple

#endif  // SYMPLE_QUERIES_GPS_QUERY_H_
