// The Twitter query T1 (paper Table 1).
//
//   T1  spam learning speed: per hashtag, the number of tweets not marked as
//       spam before the first run of at least 5 consecutive spam tweets.
//
// Groups by hashtag (string key, many groups). The consecutive-spam counter
// only needs values 0..5 plus a "reported" absorbing state, so it is encoded
// as a saturating SymEnum — the paper's observation that SymEnums encode
// finite-state machines (Section 7, data-parallel FSMs). An unbound counter
// forks at most once per chunk into the enum's states and is concrete
// afterwards, unlike a SymInt whose repeated `== 5` checks would keep
// splitting intervals. The non-spam count stays a SymInt: it is never
// compared, only incremented and reported, so it never forks at all.
#ifndef SYMPLE_QUERIES_TWITTER_QUERIES_H_
#define SYMPLE_QUERIES_TWITTER_QUERIES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>

#include "common/text.h"
#include "core/symple.h"
#include "queries/text_row.h"

namespace symple {

struct T1SpamLearning {
  using Key = std::string;  // hashtag
  struct Event {
    bool spam = false;
  };
  // Consecutive-spam state machine: 0..4 = current run length, 5 = reported
  // (absorbing).
  static constexpr uint8_t kReported = 5;
  struct State {
    SymEnum<uint8_t, 6> run = static_cast<uint8_t>(0);
    SymInt nonspam_count = 0;
    SymVector<int64_t> results;
    auto list_fields() { return std::tie(run, nonspam_count, results); }
  };
  // Count of non-spam tweets before the first >=5 spam burst, or -1 if the
  // hashtag never had such a burst.
  using Output = int64_t;

  static constexpr const char* kName = "T1";

  static std::optional<std::pair<Key, Event>> Parse(std::string_view line) {
    // Targeted extraction from the JSON tweet (created_at/user are unused).
    const size_t tag_at = line.find("\"hashtag\":\"");
    if (tag_at == std::string_view::npos) {
      return std::nullopt;
    }
    const size_t tag_begin = tag_at + 11;
    const size_t tag_end = line.find('"', tag_begin);
    const size_t spam_at = line.find("\"spam\":", tag_end);
    if (tag_end == std::string_view::npos || spam_at == std::string_view::npos ||
        spam_at + 7 >= line.size()) {
      return std::nullopt;
    }
    const char spam = line[spam_at + 7];
    if (spam != '0' && spam != '1') {
      return std::nullopt;
    }
    return std::make_pair(std::string(line.substr(tag_begin, tag_end - tag_begin)),
                          Event{spam == '1'});
  }

  static void Update(State& s, const Event& e) {
    if (e.spam) {
      // Advance the FSM; reaching the 5th consecutive spam reports the count
      // of non-spam tweets seen so far and saturates.
      if (s.run == static_cast<uint8_t>(0)) {
        s.run = static_cast<uint8_t>(1);
      } else if (s.run == static_cast<uint8_t>(1)) {
        s.run = static_cast<uint8_t>(2);
      } else if (s.run == static_cast<uint8_t>(2)) {
        s.run = static_cast<uint8_t>(3);
      } else if (s.run == static_cast<uint8_t>(3)) {
        s.run = static_cast<uint8_t>(4);
      } else if (s.run == static_cast<uint8_t>(4)) {
        s.results.push_back(s.nonspam_count);
        s.run = kReported;
      }
    } else if (s.run != kReported) {
      s.run = static_cast<uint8_t>(0);
      s.nonspam_count++;
    }
  }

  static Output Result(const State& s, const Key&) {
    const auto values = s.results.Values();
    return values.empty() ? -1 : values.front();
  }

  static void SerializeEvent(const Event& e, BinaryWriter& w) {
    WriteTextRow(w, {e.spam ? 1 : 0});
  }
  static Event DeserializeEvent(BinaryReader& r) {
    return Event{ReadTextRow<1>(r)[0] != 0};
  }
};

}  // namespace symple

#endif  // SYMPLE_QUERIES_TWITTER_QUERIES_H_
