#!/usr/bin/env sh
# Full per-PR gate: the tier-1 suite (default preset) followed by the
# sanitized build running the fault-injection / wire-hardening / degradation
# / shuffle suites under ASan+UBSan (filter lives in CMakePresets.json).
set -eu
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j "${CI_JOBS:-$(nproc)}"
ctest --preset default -j "${CI_JOBS:-$(nproc)}"

cmake --preset asan
cmake --build --preset asan -j "${CI_JOBS:-$(nproc)}"
ctest --preset asan -j "${CI_JOBS:-$(nproc)}"

echo "ci.sh: tier-1 + sanitized suites passed"
