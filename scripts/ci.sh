#!/usr/bin/env sh
# Full per-PR gate: the tier-1 suite (default preset), the sanitized builds —
# fault-injection / wire-hardening / degradation / shuffle suites under
# ASan+UBSan, and the threaded-engine / shuffle / spill / morsel suites under
# TSan (filters live in CMakePresets.json) — then the smoke-mode
# perf gate (bench_compare over two bench_smoke runs + checked-in fixtures)
# and one --explain bottleneck report as a human-readable tail.
set -eu
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j "${CI_JOBS:-$(nproc)}"
ctest --preset default -j "${CI_JOBS:-$(nproc)}"

cmake --preset asan
cmake --build --preset asan -j "${CI_JOBS:-$(nproc)}"
ctest --preset asan -j "${CI_JOBS:-$(nproc)}"

cmake --preset tsan
cmake --build --preset tsan -j "${CI_JOBS:-$(nproc)}"
ctest --preset tsan -j "${CI_JOBS:-$(nproc)}"

# --- perf-regression gate (smoke mode) ---------------------------------------
# Two back-to-back bench_smoke runs diffed with a loose threshold: on shared CI
# hardware this only catches gross regressions (binary-level slowdowns, not
# single-digit noise); the tight-threshold behaviour is pinned by the fixture
# checks below and the bench_compare_* ctest entries.
gate_dir=build/perf_gate
rm -rf "$gate_dir"
mkdir -p "$gate_dir/base" "$gate_dir/cand"
(cd "$gate_dir/base" && ../../bench/bench_smoke >/dev/null)
(cd "$gate_dir/cand" && ../../bench/bench_smoke >/dev/null)
build/bench/bench_compare "$gate_dir/base/BENCH_smoke.json" \
  "$gate_dir/cand/BENCH_smoke.json" --threshold 0.5 --min-wall-ms 5

# Fixture assertions: the gate must pass identical + noisy inputs and fail the
# +20% regression fixture.
build/bench/bench_compare bench/fixtures/BENCH_gate_base.json \
  bench/fixtures/BENCH_gate_noise.json >/dev/null
if build/bench/bench_compare bench/fixtures/BENCH_gate_base.json \
  bench/fixtures/BENCH_gate_regress.json >/dev/null; then
  echo "ci.sh: bench_compare failed to flag the regression fixture" >&2
  exit 1
fi

# --- group-table throughput gate ---------------------------------------------
# Full-size flat-vs-node grouping sweep; the binary itself enforces >= 1.3x
# insert throughput at 1M groups and exits nonzero below it. The fixture pair
# pins bench_compare's verdicts on this report shape, mirroring the
# bench_groupmap_compare_* ctest entries.
(cd "$gate_dir" && ../../build/bench/bench_groupmap)
build/bench/bench_compare bench/fixtures/BENCH_groupmap_base.json \
  bench/fixtures/BENCH_groupmap_base.json >/dev/null
if build/bench/bench_compare bench/fixtures/BENCH_groupmap_base.json \
  bench/fixtures/BENCH_groupmap_regress.json >/dev/null; then
  echo "ci.sh: bench_compare failed to flag the groupmap regression fixture" >&2
  exit 1
fi

# --- memory-budget / spill gate ----------------------------------------------
# Full-size spill-vs-in-memory measurement; the binary itself enforces that
# every budgeted engine spills, keeps peak_tracked_bytes under the budget, and
# stays within 2.5x of the in-memory wall. The fixture pair pins
# bench_compare's verdicts on this report shape, mirroring the
# bench_spill_compare_* ctest entries.
(cd "$gate_dir" && ../../build/bench/bench_spill)
build/bench/bench_compare bench/fixtures/BENCH_spill_base.json \
  bench/fixtures/BENCH_spill_base.json >/dev/null
if build/bench/bench_compare bench/fixtures/BENCH_spill_base.json \
  bench/fixtures/BENCH_spill_regress.json >/dev/null; then
  echo "ci.sh: bench_compare failed to flag the spill regression fixture" >&2
  exit 1
fi

# --- morsel map-scheduling gate ----------------------------------------------
# Full-size zipf-skewed segment layout; the binary itself enforces >= 1.3x
# modeled map makespan over static per-segment dispatch and byte-identical
# outputs across morsel granularities, exiting nonzero otherwise.
(cd "$gate_dir" && ../../build/bench/bench_morsel)

# --- bottleneck report -------------------------------------------------------
# One skewed shuffle run with --explain so every CI log carries a current
# critical-path / straggler / cost-model summary.
build/examples/query_cli G1 --records 60000 --engine mapreduce --explain

echo "ci.sh: tier-1 + sanitized suites + perf gate passed"
